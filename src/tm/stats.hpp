// Per-thread transaction statistics.
//
// These counters are the evidence stream for the reproduction: Figure 4 and
// the in-text Section VII-A numbers (transaction counts, abort percentages,
// HTM serial-fallback rates) are regenerated from them.
//
// Every scalar counter lives in the TLE_TXSTATS_COUNTERS X-macro below, which
// generates the TxStats members, the StatsSnapshot mirror, reset(),
// aggregation (runtime.cpp), the visitor used by the tle-obs/v1 JSON export,
// and a field-count static_assert — so a counter added in one place cannot
// silently drop out of the snapshot or the dumps.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "tm/config.hpp"

namespace tle {

/// X(name, "description") for every scalar TxStats counter. The per-cause
/// abort array is the one deliberate non-member of this list (it is indexed
/// by AbortCause and handled explicitly wherever the macro is expanded).
#define TLE_TXSTATS_COUNTERS(X)                                             \
  X(txn_starts, "speculative attempts begun")                               \
  X(commits, "speculative commits")                                         \
  X(commits_readonly, "subset of commits with empty write set")             \
  X(serial_fallbacks, "attempts that gave up and went serial")              \
  X(serial_commits, "irrevocable/serial executions completed")              \
  X(lock_sections, "critical sections run under the real lock")             \
  X(quiesce_calls, "post-commit quiescence operations performed")           \
  X(quiesce_waits, "quiescence calls that actually blocked")                \
  X(quiesce_spins, "spin iterations spent waiting in quiescence")           \
  X(quiesce_wait_ns, "nanoseconds spent blocked in quiescence")             \
  X(grace_scans, "grace passes this thread scanned itself")                 \
  X(grace_shared, "quiesces satisfied by another thread's scan")            \
  X(parked_waits, "futex parks after the bounded quiesce spin")             \
  X(limbo_enqueued, "free batches deferred to the limbo list")              \
  X(limbo_drained, "limbo batches released after a grace")                  \
  X(limbo_forced_flush, "drains forced by the limbo size bound")            \
  X(noquiesce_requests, "TM_NoQuiesce() invocations")                       \
  X(noquiesce_honored, "commits that skipped quiescence")                   \
  X(noquiesce_ignored_nested, "calls ignored: nested txn (SIV-B)")          \
  X(noquiesce_ignored_free, "skips denied: txn freed memory")               \
  X(noquiesce_ignored_htm, "skips denied: simulated-HTM readers possible")  \
  X(htm_routed_frees, "engine frees routed to limbo: HTM readers in-flight") \
  X(priv_immediate_frees, "tm_private_free released immediately")           \
  X(priv_limbo_routed, "tm_private_free routed through limbo")              \
  X(tm_allocs, "transactional allocations")                                 \
  X(tm_frees, "transactional frees")                                        \
  X(deferred_run, "deferred actions executed post-commit")                  \
  X(condvar_waits, "transactional condvar waits")                           \
  X(condvar_timeouts, "transactional condvar timed waits that expired")     \
  X(htm_retries, "HTM re-attempts after an abort")                          \
  X(stm_read_dedup, "ml_wt repeat reads absorbed by the filter")            \
  X(htm_read_dedup, "HTM repeat reads served from the value log")           \
  X(htm_rw_hits, "HTM reads served from the write buffer")                  \
  X(stripe_bumps, "commit-sequence stripes acquired by HTM commits")        \
  X(stripe_false_revalidations, "stripe revalidations with no value change") \
  X(lazy_sub_commits, "HTM commits under lazy fallback-lock subscription")  \
  X(gclock_advances, "deferred-clock CAS advances by readers (GV5)")        \
  X(tictoc_extensions, "tictoc read-entry rts extensions (CAS bumps)")      \
  X(tictoc_extension_fails, "tictoc extensions failed: value changed")      \
  X(tictoc_wts_waits, "tictoc bounded waits on a locked orec")              \
  X(tictoc_lock_timeouts, "tictoc bounded lock waits that expired")         \
  X(faults_injected, "aborts fired by the fault-injection plan")            \
  X(fault_delays, "schedule perturbations executed by the plan")            \
  X(fault_forced_serial, "serial-mode entries forced by the plan")          \
  X(fault_forced_flush, "limbo flushes forced by the plan")                 \
  X(gov_serial_immediate, "aborts escalated straight to serial by policy")  \
  X(gov_backoffs, "aborts handled with randomized exponential backoff")     \
  X(gov_immediate_retries, "aborts retried immediately (spurious policy)")  \
  X(gov_drain_waits, "serial-pending drains awaited without budget burn")   \
  X(gov_drain_timeouts, "drain waits that hit serial_drain_timeout_ns")     \
  X(gov_storm_enters, "abort-storm gate activations")                       \
  X(gov_storm_exits, "abort-storm gate releases")                           \
  X(gov_storm_gated, "speculative attempts held at the storm gate")         \
  X(gov_watchdog_escalations, "starving transactions escalated to serial")  \
  X(gov_stall_events, "quiesce/drain stalls exceeding watchdog_stall_ns")    \
  X(ctl_evals, "adaptive-controller evaluation passes")                     \
  X(ctl_plan_changes, "controller per-site plan changes applied")           \
  X(ctl_forced_serial, "attempts routed serial by a controller plan")       \
  X(ctl_boost_applied, "attempts granted a controller-boosted retry budget") \
  X(ctl_probe_attempts, "recovery-probe attempts re-admitted to speculate")  \
  X(ctl_degraded_enters, "controller degraded-mode entries")                \
  X(ctl_degraded_exits, "controller degraded-mode full recoveries")         \
  X(ctl_mode_switches, "drained global exec-mode switches by the controller") \
  X(ctl_flaps, "probing intervals that re-tripped back to degraded")        \
  X(obs_site_overflow, "TLE_TX_SITE registrations folded into id 0: full")

/// Number of scalar counters in the X-macro (excludes the abort array).
inline constexpr int kTxStatsCounterCount = 0
#define TLE_TXSTATS_COUNT_ONE(name, desc) +1
    TLE_TXSTATS_COUNTERS(TLE_TXSTATS_COUNT_ONE)
#undef TLE_TXSTATS_COUNT_ONE
    ;

inline constexpr int kAbortCauseCount = static_cast<int>(AbortCause::kCount);

/// Counters owned by one thread; incremented with relaxed atomics so an
/// aggregator may read them concurrently without UB.
struct TxStats {
  using Counter = std::atomic<std::uint64_t>;

#define TLE_TXSTATS_DECL(name, desc) Counter name{0};  ///< desc
  TLE_TXSTATS_COUNTERS(TLE_TXSTATS_DECL)
#undef TLE_TXSTATS_DECL

  Counter aborts[kAbortCauseCount] = {};  ///< speculative aborts by cause

  void reset() noexcept {
    auto zero = [](Counter& c) { c.store(0, std::memory_order_relaxed); };
#define TLE_TXSTATS_ZERO(name, desc) zero(name);
    TLE_TXSTATS_COUNTERS(TLE_TXSTATS_ZERO)
#undef TLE_TXSTATS_ZERO
    for (auto& a : aborts) zero(a);
  }

  void bump(Counter& c, std::uint64_t n = 1) noexcept {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  /// Visit every scalar counter as f(name, atomic&); the abort array is not
  /// included. Used by tests to prove aggregation covers every field.
  template <typename F>
  void for_each_counter(F&& f) {
#define TLE_TXSTATS_VISIT(name, desc) f(#name, name);
    TLE_TXSTATS_COUNTERS(TLE_TXSTATS_VISIT)
#undef TLE_TXSTATS_VISIT
  }
};

/// Plain-value aggregate of every live thread's TxStats.
struct StatsSnapshot {
#define TLE_TXSTATS_DECL(name, desc) std::uint64_t name = 0;  ///< desc
  TLE_TXSTATS_COUNTERS(TLE_TXSTATS_DECL)
#undef TLE_TXSTATS_DECL

  std::uint64_t aborts[kAbortCauseCount] = {};

  std::uint64_t aborts_total() const noexcept {
    std::uint64_t t = 0;
    for (auto a : aborts) t += a;
    return t;
  }

  /// Fraction of speculative attempts that aborted (0 when none started).
  double abort_rate() const noexcept {
    return txn_starts ? static_cast<double>(aborts_total()) /
                            static_cast<double>(txn_starts)
                      : 0.0;
  }

  /// Fraction of logical transactions whose final execution was serial.
  double serial_fraction() const noexcept {
    const std::uint64_t logical = commits + serial_commits;
    return logical ? static_cast<double>(serial_commits) /
                         static_cast<double>(logical)
                   : 0.0;
  }

  /// Visit every scalar counter as f(name, value, description); the abort
  /// array is exported separately, keyed by cause name.
  template <typename F>
  void for_each_counter(F&& f) const {
#define TLE_TXSTATS_VISIT(name, desc) f(#name, name, desc);
    TLE_TXSTATS_COUNTERS(TLE_TXSTATS_VISIT)
#undef TLE_TXSTATS_VISIT
  }

  /// Multi-line human-readable report.
  std::string report() const;
};

// A counter added to StatsSnapshot outside the X-macro (or an AbortCause
// added without growing the array) trips this: the snapshot must be exactly
// the macro-generated scalars plus the per-cause abort array.
static_assert(sizeof(StatsSnapshot) ==
                  sizeof(std::uint64_t) *
                      (kTxStatsCounterCount + kAbortCauseCount),
              "StatsSnapshot has fields not generated by "
              "TLE_TXSTATS_COUNTERS; add them to the X-macro so "
              "aggregation and the obs exports stay complete");

/// Sum the counters of every registered thread (safe while threads run; the
/// result is then approximate, exact at barriers).
StatsSnapshot aggregate_stats() noexcept;

/// Zero every registered thread's counters.
void reset_stats() noexcept;

}  // namespace tle
