#include "tpl/discipline.hpp"

namespace tle::tpl {

namespace {
constexpr std::size_t kMaxSamples = 8;
constexpr std::size_t kMaxTrace = 160;  // keep session trails bounded
}  // namespace

DisciplineMonitor::ThreadState&
DisciplineMonitor::state_for_current_thread() {
  return states_[my_slot_id()];
}

void DisciplineMonitor::on_acquire(const void* lock, const char* name) {
  ThreadState& st = state_for_current_thread();
  const bool violating = !st.held.empty() && st.released_in_session;
  st.held.push_back(lock);
  if (st.trace.size() < kMaxTrace) {
    st.trace += name;
    st.trace += "+ ";
  }
  std::lock_guard<std::mutex> g(m_);
  ++report_.acquires;
  if (st.held.size() > report_.max_nesting)
    report_.max_nesting = st.held.size();
  if (violating) {
    ++report_.violations;
    if (report_.samples.size() < kMaxSamples)
      report_.samples.push_back(
          Violation{my_slot_id(), name, st.trace});
  }
}

void DisciplineMonitor::on_release(const void* lock, const char* name) {
  ThreadState& st = state_for_current_thread();
  for (auto it = st.held.rbegin(); it != st.held.rend(); ++it) {
    if (*it == lock) {
      st.held.erase(std::next(it).base());
      break;
    }
  }
  if (st.trace.size() < kMaxTrace) {
    st.trace += name;
    st.trace += "- ";
  }
  if (st.held.empty()) {
    // Session complete.
    std::lock_guard<std::mutex> g(m_);
    ++report_.sessions;
    st.released_in_session = false;
    st.trace.clear();
  } else {
    st.released_in_session = true;
  }
}

bool DisciplineMonitor::clean() const {
  std::lock_guard<std::mutex> g(m_);
  return report_.violations == 0;
}

Report DisciplineMonitor::report() const {
  std::lock_guard<std::mutex> g(m_);
  return report_;
}

void DisciplineMonitor::reset() {
  std::lock_guard<std::mutex> g(m_);
  report_ = Report{};
  for (auto& st : states_) {
    st.held.clear();
    st.released_in_session = false;
    st.trace.clear();
  }
}

}  // namespace tle::tpl
