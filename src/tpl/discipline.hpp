// Dynamic two-phase-locking (2PL) discipline checker — Section V tooling.
//
// The paper found that x265's most important critical section could not be
// transactionalized because its lock acquire/release pattern violated
// two-phase locking (Listing 3), and left as an open question whether 2PL is
// a sufficient condition for safe naïve transactionalization. This monitor
// makes the property testable on a running program:
//
// A *session* spans from a thread's first lock acquisition until it holds no
// locks. Within a session, 2PL requires every acquire to precede every
// release (a growing phase then a shrinking phase). The monitor records each
// thread's acquire/release events and flags any acquire that follows a
// release in the same session — exactly the pattern that forced the paper's
// ready-flag refactoring (Listing 4).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "tm/registry.hpp"

namespace tle::tpl {

struct Violation {
  int thread_slot;
  std::string lock_name;     ///< lock whose acquire broke the discipline
  std::string session_trace; ///< compact "A+ B+ B- C+" style event trail
};

struct Report {
  std::uint64_t sessions = 0;          ///< completed lock sessions
  std::uint64_t acquires = 0;
  std::uint64_t violations = 0;        ///< acquires that followed a release
  std::uint64_t max_nesting = 0;       ///< deepest simultaneous lock hold
  std::vector<Violation> samples;      ///< first few violating sessions
};

class DisciplineMonitor {
 public:
  DisciplineMonitor() = default;
  DisciplineMonitor(const DisciplineMonitor&) = delete;
  DisciplineMonitor& operator=(const DisciplineMonitor&) = delete;

  /// Record an acquisition of `lock` (opaque identity; `name` for reports).
  void on_acquire(const void* lock, const char* name);

  /// Record a release of `lock`.
  void on_release(const void* lock, const char* name);

  /// True if no violation has been observed so far.
  bool clean() const;

  Report report() const;

  void reset();

 private:
  struct ThreadState {
    std::vector<const void*> held;
    bool released_in_session = false;
    std::string trace;  ///< event trail of the current session
  };

  ThreadState& state_for_current_thread();

  mutable std::mutex m_;
  Report report_;
  ThreadState states_[kMaxThreads];
};

/// A mutex wrapper that feeds a DisciplineMonitor. Used by the videnc
/// Listing-3/Listing-4 demonstrations and directly in tests.
class MonitoredMutex {
 public:
  MonitoredMutex(DisciplineMonitor& mon, const char* name)
      : mon_(&mon), name_(name) {}

  void lock() {
    m_.lock();
    mon_->on_acquire(this, name_);
  }

  void unlock() {
    mon_->on_release(this, name_);
    m_.unlock();
  }

  const char* name() const noexcept { return name_; }

 private:
  std::mutex m_;
  DisciplineMonitor* mon_;
  const char* name_;
};

}  // namespace tle::tpl
