// pipez — a faithful architectural clone of PBZip2 (the paper's first
// application): a serial-parallel-serial pipeline with
//
//   producer  -> bounded FIFO of block descriptors ->
//   N consumer threads (compress/decompress, OUTSIDE critical sections) ->
//   ordered output collector -> serial writer
//
// All inter-stage synchronization runs through tle::critical /
// tle::tx_condvar, so the whole pipeline executes under any of the paper's
// five configurations (Lock / STM+Spin / STM+CondVar / +NoQuiesce / HTM)
// chosen via tle::set_exec_mode().
//
// The critical sections only touch queue metadata — small and syscall-free,
// exactly the property the paper reports for PBZip2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tle::pipez {

struct Config {
  int worker_threads = 4;              ///< consumer (compressor) threads
  std::size_t block_size = 900000;     ///< paper default "900K"
  std::size_t queue_capacity = 16;     ///< pending block descriptors
  bool verbose_log = false;            ///< exercise deferred logging (§VI-c)
};

struct RunStats {
  std::uint64_t blocks = 0;
  std::uint64_t in_bytes = 0;
  std::uint64_t out_bytes = 0;
  double seconds = 0;
};

/// Compress `input` into a framed multi-block stream.
std::vector<std::uint8_t> compress(const std::vector<std::uint8_t>& input,
                                   const Config& cfg, RunStats* stats = nullptr);

struct DecompressResult {
  bool ok = false;
  std::string error;
  std::vector<std::uint8_t> data;
};

/// Decompress a stream produced by compress(). Block integrity (CRC) is
/// verified; any corruption fails the whole run.
DecompressResult decompress(const std::vector<std::uint8_t>& stream,
                            const Config& cfg, RunStats* stats = nullptr);

/// Deterministic, compressible synthetic corpus (the stand-in for the
/// paper's 650 MB test file; size set by the caller).
std::vector<std::uint8_t> make_corpus(std::size_t bytes, std::uint64_t seed);

// --- file interface ---------------------------------------------------------
// Streaming variants mirroring the PBZip2 tool: the producer reads blocks
// from disk and the ordered writer streams frames out, so peak memory is
// bounded by the in-flight block window rather than the file size.

struct FileResult {
  bool ok = false;
  std::string error;
  RunStats stats;
};

FileResult compress_file(const std::string& input_path,
                         const std::string& output_path, const Config& cfg);

FileResult decompress_file(const std::string& input_path,
                           const std::string& output_path, const Config& cfg);

/// Drain the deferred-log buffer filled when Config::verbose_log is set.
std::vector<std::string> drain_log();

}  // namespace tle::pipez
