// Streaming file interface for pipez.
//
// compress_file: a producer thread reads fixed-size blocks from the input
// file (I/O outside all critical sections, as in PBZip2), consumers
// compress them, and the ordered writer streams frames to the output file —
// peak memory is bounded by the queue window, not the file size.
//
// File stream format (v2, trailer-based so the producer can stream without
// knowing the block count up front):
//   "ZPI2" magic (4B) | u32 block_size |
//   repeated frames:  u32 comp_len (nonzero) | comp_len bytes |
//   u32 0 end marker | u32 nblocks | u64 orig_size
#include <atomic>
#include <cstring>
#include <fstream>
#include <thread>

#include "bzip/block_codec.hpp"
#include "pipez/pipeline.hpp"
#include "sync/bounded_queue.hpp"
#include "sync/tx_condvar.hpp"
#include "tm/api.hpp"
#include "util/timing.hpp"

namespace tle::pipez {

namespace {

constexpr char kFileMagic[4] = {'Z', 'P', 'I', '2'};

struct FileBlock {
  std::uint32_t index;
  std::vector<std::uint8_t>* data;  // owned; consumer deletes after use
};

void put_u32(std::ofstream& out, std::uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.write(b, 4);
}

void put_u64(std::ofstream& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

bool get_u32(std::ifstream& in, std::uint32_t* v) {
  char b[4];
  if (!in.read(b, 4)) return false;
  std::memcpy(v, b, 4);
  return true;
}

bool get_u64(std::ifstream& in, std::uint64_t* v) {
  std::uint32_t lo, hi;
  if (!get_u32(in, &lo) || !get_u32(in, &hi)) return false;
  *v = static_cast<std::uint64_t>(hi) << 32 | lo;
  return true;
}

/// Ordered hand-off of finished blocks to the streaming writer (same shape
/// as the in-memory OutputCollector, unbounded index horizon).
class StreamCollector {
 public:
  explicit StreamCollector(std::size_t window)
      : window_(window < 4 ? 4 : window),
        slots_(new tm_var<std::vector<std::uint8_t>*>[window_]) {}

  ~StreamCollector() {
    for (std::size_t i = 0; i < window_; ++i) delete slots_[i].unsafe_get();
  }

  /// Deliver block `idx`; blocks while the writer is more than a window
  /// behind (bounds memory).
  void deliver(std::size_t idx, std::vector<std::uint8_t>* data) {
    for (;;) {
      bool placed = false;
      critical(m_, TLE_TX_SITE("pipez/file_deliver"), [&](TxContext& tx) {
        if (idx >= tx.read(written_) + window_ ||
            tx.read(slots_[idx % window_]) != nullptr) {
          tx.no_quiesce();
          ready_.wait(tx);
          return;
        }
        tx.no_quiesce();  // publication
        tx.write(slots_[idx % window_], data);
        ready_.notify_all(tx);
        placed = true;
      });
      if (placed) return;
    }
  }

  /// Writer: take block `idx` (ascending). Blocks until available.
  std::vector<std::uint8_t>* take(std::size_t idx) {
    for (;;) {
      std::vector<std::uint8_t>* p = try_take(idx);
      if (p) return p;
    }
  }

  /// One bounded attempt at block `idx`; nullptr after a short timed wait
  /// (lets the caller interleave termination checks — needed while the
  /// total block count is still unknown during streaming compression).
  std::vector<std::uint8_t>* try_take(std::size_t idx) {
    std::vector<std::uint8_t>* p = nullptr;
    critical(m_, TLE_TX_SITE("pipez/file_take"), [&](TxContext& tx) {
      p = tx.read(slots_[idx % window_]);
      if (p) {
        tx.write(slots_[idx % window_],
                 static_cast<std::vector<std::uint8_t>*>(nullptr));
        tx.write(written_, idx + 1);
        ready_.notify_all(tx);
        // privatization: no TM_NoQuiesce
      } else {
        tx.no_quiesce();
        ready_.wait_for(tx, std::chrono::milliseconds(1));
      }
    });
    return p;
  }

 private:
  const std::size_t window_;
  std::unique_ptr<tm_var<std::vector<std::uint8_t>*>[]> slots_;
  tm_var<std::uint64_t> written_{0};
  elidable_mutex m_;
  tx_condvar ready_;
};

}  // namespace

FileResult compress_file(const std::string& input_path,
                         const std::string& output_path, const Config& cfg) {
  Stopwatch sw;
  FileResult res;
  std::ifstream in(input_path, std::ios::binary);
  if (!in) {
    res.error = "cannot open input: " + input_path;
    return res;
  }
  std::ofstream out(output_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    res.error = "cannot open output: " + output_path;
    return res;
  }

  const std::size_t bs = cfg.block_size ? cfg.block_size : 1;
  out.write(kFileMagic, 4);
  put_u32(out, static_cast<std::uint32_t>(bs));

  bounded_queue<FileBlock*> fifo(cfg.queue_capacity);
  StreamCollector collected(cfg.queue_capacity * 2);
  std::atomic<std::uint64_t> total_in{0};
  std::atomic<std::uint32_t> total_blocks{0};

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.worker_threads));
  for (int w = 0; w < cfg.worker_threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto task = fifo.pop();
        if (!task.has_value()) break;
        FileBlock* b = *task;
        auto* comp = new std::vector<std::uint8_t>(
            bzip::compress_block(b->data->data(), b->data->size()));
        collected.deliver(b->index, comp);
        delete b->data;
        delete b;
      }
    });
  }

  std::thread producer([&] {
    std::uint32_t index = 0;
    for (;;) {
      auto* buf = new std::vector<std::uint8_t>(bs);
      in.read(reinterpret_cast<char*>(buf->data()),
              static_cast<std::streamsize>(bs));
      const std::streamsize got = in.gcount();
      if (got <= 0) {
        delete buf;
        break;
      }
      buf->resize(static_cast<std::size_t>(got));
      total_in.fetch_add(static_cast<std::uint64_t>(got));
      fifo.push(new FileBlock{index++, buf});
      if (got < static_cast<std::streamsize>(bs)) break;  // EOF reached
    }
    total_blocks.store(index);
    fifo.close();
  });

  // Write frames WHILE the producer still reads (total_blocks is only
  // meaningful once producer_done flips; until then keep draining).
  std::atomic<bool> producer_done{false};
  std::thread producer_waiter([&] {
    producer.join();
    producer_done.store(true, std::memory_order_release);
  });
  std::uint64_t out_bytes = 8;
  std::uint32_t i = 0;
  for (;;) {
    if (producer_done.load(std::memory_order_acquire) &&
        i >= total_blocks.load())
      break;
    std::vector<std::uint8_t>* blk = collected.try_take(i);
    if (!blk) continue;  // timed wait inside; re-check termination
    put_u32(out, static_cast<std::uint32_t>(blk->size()));
    out.write(reinterpret_cast<const char*>(blk->data()),
              static_cast<std::streamsize>(blk->size()));
    out_bytes += 4 + blk->size();
    delete blk;
    ++i;
  }
  producer_waiter.join();
  for (auto& w : workers) w.join();
  const std::uint32_t nblocks = total_blocks.load();

  put_u32(out, 0);  // end marker
  put_u32(out, nblocks);
  put_u64(out, total_in.load());
  out.flush();
  if (!out) {
    res.error = "write failure on " + output_path;
    return res;
  }
  res.ok = true;
  res.stats.blocks = nblocks;
  res.stats.in_bytes = total_in.load();
  res.stats.out_bytes = out_bytes + 16;
  res.stats.seconds = sw.seconds();
  return res;
}

FileResult decompress_file(const std::string& input_path,
                           const std::string& output_path, const Config& cfg) {
  Stopwatch sw;
  FileResult res;
  std::ifstream in(input_path, std::ios::binary);
  if (!in) {
    res.error = "cannot open input: " + input_path;
    return res;
  }
  char magic[4];
  std::uint32_t bs = 0;
  if (!in.read(magic, 4) || std::memcmp(magic, kFileMagic, 4) != 0 ||
      !get_u32(in, &bs)) {
    res.error = "bad file magic";
    return res;
  }

  // Load the frames (compressed data is the small side; random access is
  // needed for parallel decode).
  struct Frame {
    std::vector<std::uint8_t> data;
  };
  std::vector<Frame> frames;
  for (;;) {
    std::uint32_t len = 0;
    if (!get_u32(in, &len)) {
      res.error = "truncated stream (missing end marker)";
      return res;
    }
    if (len == 0) break;
    Frame f;
    f.data.resize(len);
    if (!in.read(reinterpret_cast<char*>(f.data.data()), len)) {
      res.error = "truncated frame";
      return res;
    }
    frames.push_back(std::move(f));
  }
  std::uint32_t nblocks = 0;
  std::uint64_t orig_size = 0;
  if (!get_u32(in, &nblocks) || !get_u64(in, &orig_size) ||
      nblocks != frames.size()) {
    res.error = "corrupt trailer";
    return res;
  }

  std::ofstream out(output_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    res.error = "cannot open output: " + output_path;
    return res;
  }

  bounded_queue<FileBlock*> fifo(cfg.queue_capacity);
  StreamCollector collected(cfg.queue_capacity * 2);
  std::atomic<bool> failed{false};

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.worker_threads));
  for (int w = 0; w < cfg.worker_threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto task = fifo.pop();
        if (!task.has_value()) break;
        FileBlock* b = *task;
        bzip::DecodeResult d = bzip::decompress_block(*b->data);
        if (!d.ok) failed.store(true, std::memory_order_relaxed);
        collected.deliver(b->index,
                          new std::vector<std::uint8_t>(std::move(d.data)));
        delete b;
      }
    });
  }

  std::thread producer([&] {
    for (std::uint32_t i = 0; i < nblocks; ++i)
      fifo.push(new FileBlock{i, &frames[i].data});
    fifo.close();
  });

  std::uint64_t written = 0;
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    std::vector<std::uint8_t>* blk = collected.take(i);
    out.write(reinterpret_cast<const char*>(blk->data()),
              static_cast<std::streamsize>(blk->size()));
    written += blk->size();
    delete blk;
  }
  producer.join();
  for (auto& w : workers) w.join();
  out.flush();

  if (failed.load()) {
    res.error = "block decode failed (corrupt stream)";
    return res;
  }
  if (written != orig_size) {
    res.error = "reassembled size mismatch";
    return res;
  }
  if (!out) {
    res.error = "write failure on " + output_path;
    return res;
  }
  res.ok = true;
  res.stats.blocks = nblocks;
  res.stats.in_bytes = 0;
  res.stats.out_bytes = written;
  res.stats.seconds = sw.seconds();
  return res;
}

}  // namespace tle::pipez
