#include "pipez/pipeline.hpp"

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

#include "bzip/block_codec.hpp"
#include "sync/bounded_queue.hpp"
#include "sync/tx_condvar.hpp"
#include "tm/api.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace tle::pipez {

namespace {

constexpr std::uint32_t kStreamMagic = 0x5A504950;  // "PIPZ"

// --- deferred diagnostic log (Section VI-c) --------------------------------
// Log lines produced inside critical sections are deferred to post-commit;
// ordering is reconstructible from the sequence number, as the paper notes
// for memcached/Atomic Quake logging.
std::mutex g_log_mutex;
std::vector<std::string> g_log;
std::atomic<std::uint64_t> g_log_seq{0};

void deferred_log(TxContext& tx, const char* what, std::uint64_t index) {
  const std::uint64_t seq = g_log_seq.fetch_add(1, std::memory_order_relaxed);
  tx.defer([seq, what, index] {
    char line[96];
    std::snprintf(line, sizeof line, "%llu %s block=%llu",
                  (unsigned long long)seq, what, (unsigned long long)index);
    std::lock_guard<std::mutex> g(g_log_mutex);
    g_log.emplace_back(line);
  });
}

// --- block descriptors -------------------------------------------------------

struct BlockTask {
  std::uint32_t index;
  const std::uint8_t* in;
  std::size_t in_size;
};

/// Ordered output: consumers deliver finished blocks by index; the serial
/// writer awaits them in order. Mirrors PBZip2's OutputBuffer + condvar.
class OutputCollector {
 public:
  explicit OutputCollector(std::size_t blocks)
      : n_(blocks), slots_(new tm_var<std::vector<std::uint8_t>*>[blocks]) {}

  ~OutputCollector() {
    // Normally all slots are consumed; on error paths, reap leftovers.
    // Routed delete: a straggling simulated-HTM consumer could still hold a
    // zombie reference to an undelivered slot's block.
    for (std::size_t i = 0; i < n_; ++i)
      tm_private_delete(slots_[i].unsafe_get());
  }

  /// Consumer side: publish block `idx` (ownership transfers).
  void deliver(std::size_t idx, std::vector<std::uint8_t>* data) {
    critical(m_, TLE_TX_SITE("pipez/deliver"), [&](TxContext& tx) {
      tx.no_quiesce();  // publishing, not privatizing
      tx.write(slots_[idx], data);
      ready_.notify_all(tx);
    });
  }

  /// Writer side: block until `idx` is ready, then take it (privatization).
  std::vector<std::uint8_t>* await(std::size_t idx) {
    for (;;) {
      std::vector<std::uint8_t>* p = nullptr;
      critical(m_, TLE_TX_SITE("pipez/await"), [&](TxContext& tx) {
        p = tx.read(slots_[idx]);
        if (p) {
          tx.write(slots_[idx], static_cast<std::vector<std::uint8_t>*>(nullptr));
          // Privatizing: quiescence must run, so no TM_NoQuiesce here.
        } else {
          tx.no_quiesce();
          ready_.wait(tx);
        }
      });
      if (p) return p;
    }
  }

 private:
  std::size_t n_;
  std::unique_ptr<tm_var<std::vector<std::uint8_t>*>[]> slots_;
  elidable_mutex m_;
  tx_condvar ready_;
};

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

bool get_u32(const std::uint8_t* d, std::size_t n, std::size_t* pos,
             std::uint32_t* v) {
  if (*pos + 4 > n) return false;
  std::memcpy(v, d + *pos, 4);
  *pos += 4;
  return true;
}

}  // namespace

std::vector<std::uint8_t> compress(const std::vector<std::uint8_t>& input,
                                   const Config& cfg, RunStats* stats) {
  Stopwatch sw;
  const std::size_t bs = cfg.block_size ? cfg.block_size : 1;
  const std::size_t nblocks = input.empty() ? 0 : (input.size() + bs - 1) / bs;

  bounded_queue<BlockTask*> fifo(cfg.queue_capacity);
  OutputCollector collected(nblocks);

  // Consumers: compression itself runs outside any critical section.
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.worker_threads));
  for (int w = 0; w < cfg.worker_threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto task = fifo.pop();
        if (!task.has_value()) break;
        BlockTask* t = *task;
        auto* out = new std::vector<std::uint8_t>(
            bzip::compress_block(t->in, t->in_size));
        collected.deliver(t->index, out);
        delete t;
      }
    });
  }

  // Producer: split the input into block descriptors.
  std::thread producer([&] {
    for (std::size_t i = 0; i < nblocks; ++i) {
      auto* t = new BlockTask{static_cast<std::uint32_t>(i),
                              input.data() + i * bs,
                              std::min(bs, input.size() - i * bs)};
      if (cfg.verbose_log) {
        // Route the log through a tiny critical section to exercise §VI-c.
        static elidable_mutex log_mutex;
        critical(log_mutex, TLE_TX_SITE("pipez/log"), [&](TxContext& tx) {
          tx.no_quiesce();
          deferred_log(tx, "produce", i);
        });
      }
      fifo.push(t);
    }
    fifo.close();
  });

  // Serial writer (this thread): assemble in order.
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 64);
  put_u32(&out, kStreamMagic);
  put_u32(&out, static_cast<std::uint32_t>(nblocks));
  put_u32(&out, static_cast<std::uint32_t>(bs));
  put_u32(&out, static_cast<std::uint32_t>(input.size()));
  for (std::size_t i = 0; i < nblocks; ++i) {
    std::vector<std::uint8_t>* blk = collected.await(i);
    put_u32(&out, static_cast<std::uint32_t>(blk->size()));
    out.insert(out.end(), blk->begin(), blk->end());
    // Writer-side privatization: await() detached the block from the shared
    // slot, but a consumer elided under simulated HTM may still be mid-read.
    tm_private_delete(blk);
  }

  producer.join();
  for (auto& w : workers) w.join();

  if (stats) {
    stats->blocks = nblocks;
    stats->in_bytes = input.size();
    stats->out_bytes = out.size();
    stats->seconds = sw.seconds();
  }
  return out;
}

DecompressResult decompress(const std::vector<std::uint8_t>& stream,
                            const Config& cfg, RunStats* stats) {
  Stopwatch sw;
  DecompressResult res;
  std::size_t pos = 0;
  std::uint32_t magic = 0, nblocks = 0, bs = 0, orig = 0;
  if (!get_u32(stream.data(), stream.size(), &pos, &magic) ||
      magic != kStreamMagic) {
    res.error = "bad stream magic";
    return res;
  }
  if (!get_u32(stream.data(), stream.size(), &pos, &nblocks) ||
      !get_u32(stream.data(), stream.size(), &pos, &bs) ||
      !get_u32(stream.data(), stream.size(), &pos, &orig)) {
    res.error = "truncated stream header";
    return res;
  }

  // Scan block frames serially (cheap), building descriptors.
  std::vector<BlockTask> tasks(nblocks);
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    std::uint32_t len = 0;
    if (!get_u32(stream.data(), stream.size(), &pos, &len) ||
        pos + len > stream.size()) {
      res.error = "truncated block frame";
      return res;
    }
    tasks[i] = BlockTask{i, stream.data() + pos, len};
    pos += len;
  }

  bounded_queue<BlockTask*> fifo(cfg.queue_capacity);
  OutputCollector collected(nblocks);
  std::atomic<bool> failed{false};

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.worker_threads));
  for (int w = 0; w < cfg.worker_threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto task = fifo.pop();
        if (!task.has_value()) break;
        BlockTask* t = *task;
        bzip::DecodeResult d = bzip::decompress_block(t->in, t->in_size);
        if (!d.ok) failed.store(true, std::memory_order_relaxed);
        // Deliver even on failure (empty) so the writer can't deadlock.
        collected.deliver(t->index,
                          new std::vector<std::uint8_t>(std::move(d.data)));
      }
    });
  }

  std::thread producer([&] {
    // Push every descriptor even after a failure: workers deliver an empty
    // block for failed decodes, so the writer always receives all slots and
    // can never deadlock on a missing index.
    for (auto& t : tasks) fifo.push(&t);
    fifo.close();
  });

  res.data.reserve(orig);
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    std::vector<std::uint8_t>* blk = collected.await(i);
    res.data.insert(res.data.end(), blk->begin(), blk->end());
    tm_private_delete(blk);  // same writer-side privatization as compress()
  }
  producer.join();
  for (auto& w : workers) w.join();

  if (failed.load()) {
    res.error = "block decode failed (corrupt stream)";
    res.data.clear();
    return res;
  }
  if (res.data.size() != orig) {
    res.error = "reassembled size mismatch";
    res.data.clear();
    return res;
  }
  res.ok = true;
  if (stats) {
    stats->blocks = nblocks;
    stats->in_bytes = stream.size();
    stats->out_bytes = res.data.size();
    stats->seconds = sw.seconds();
  }
  return res;
}

std::vector<std::uint8_t> make_corpus(std::size_t bytes, std::uint64_t seed) {
  static const char* words[] = {
      "the ",    "quick ",  "brown ",   "fox ",    "jumps ",   "over ",
      "a ",      "lazy ",   "dog ",     "stream ", "cipher ",  "block ",
      "lock ",   "elide ",  "commit ",  "abort ",  "quiesce ", "thread ",
      "encode ", "decode ", "pipeline "};
  constexpr std::size_t kWords = sizeof(words) / sizeof(words[0]);
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out;
  out.reserve(bytes + 32);
  while (out.size() < bytes) {
    const char* w = words[rng.below(kWords)];
    out.insert(out.end(), w, w + std::strlen(w));
    if (rng.chance(0.03)) out.push_back('\n');
    if (rng.chance(0.01)) {
      // Occasional binary noise keeps the codec honest.
      out.push_back(static_cast<std::uint8_t>(rng()));
    }
  }
  out.resize(bytes);
  return out;
}

std::vector<std::string> drain_log() {
  std::lock_guard<std::mutex> g(g_log_mutex);
  std::vector<std::string> out;
  out.swap(g_log);
  return out;
}

}  // namespace tle::pipez
