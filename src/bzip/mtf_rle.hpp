// Move-to-front coding and the two run-length layers of the bzip2 pipeline:
//   RLE1  — pre-BWT byte runs (4 equal bytes + count byte),
//   ZRLE  — post-MTF zero runs in bijective base-2 (RUNA/RUNB symbols).
#pragma once

#include <cstdint>
#include <vector>

namespace tle::bzip {

// --- RLE1 -------------------------------------------------------------------

/// Runs of >=4 equal bytes become the 4 bytes plus a count byte (0..250
/// additional repeats), exactly the bzip2 scheme.
std::vector<std::uint8_t> rle1_encode(const std::uint8_t* data, std::size_t n);
std::vector<std::uint8_t> rle1_decode(const std::uint8_t* data, std::size_t n);

// --- MTF --------------------------------------------------------------------

/// Move-to-front transform (alphabet 0..255).
std::vector<std::uint8_t> mtf_encode(const std::uint8_t* data, std::size_t n);
std::vector<std::uint8_t> mtf_decode(const std::uint8_t* data, std::size_t n);

// --- ZRLE symbol stream -------------------------------------------------------

/// Post-MTF symbol alphabet:
///   0 RUNA, 1 RUNB                (zero-run digits, bijective base 2)
///   2..256                        MTF values 1..255 (shifted by one)
///   257 EOB                       end of block
inline constexpr std::uint16_t kRunA = 0;
inline constexpr std::uint16_t kRunB = 1;
inline constexpr std::uint16_t kEob = 257;
inline constexpr std::size_t kSymbolAlphabet = 258;

/// MTF bytes -> ZRLE symbol stream (terminated by EOB).
std::vector<std::uint16_t> zrle_encode(const std::uint8_t* mtf, std::size_t n);

/// ZRLE symbols (must end in EOB) -> MTF bytes. Returns false on a malformed
/// stream.
bool zrle_decode(const std::uint16_t* symbols, std::size_t n,
                 std::vector<std::uint8_t>* out);

}  // namespace tle::bzip
