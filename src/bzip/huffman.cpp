#include "bzip/huffman.hpp"

#include <algorithm>
#include <queue>

namespace tle::bzip {

namespace {

struct TreeNode {
  std::uint64_t freq;
  int left = -1;   // node indices; -1 for leaves
  int right = -1;
  std::uint16_t symbol = 0;
};

/// Depth of each leaf of the Huffman tree for `freqs`.
std::vector<std::uint8_t> tree_depths(const std::vector<std::uint64_t>& freqs) {
  const std::size_t n = freqs.size();
  std::vector<TreeNode> nodes;
  nodes.reserve(2 * n);
  using Entry = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t s = 0; s < n; ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back(TreeNode{freqs[s], -1, -1, static_cast<std::uint16_t>(s)});
    heap.emplace(freqs[s], static_cast<int>(nodes.size()) - 1);
  }
  std::vector<std::uint8_t> depths(n, 0);
  if (heap.empty()) return depths;
  if (heap.size() == 1) {
    depths[nodes[heap.top().second].symbol] = 1;
    return depths;
  }
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back(TreeNode{fa + fb, a, b, 0});
    heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
  }
  // Iterative depth assignment from the root.
  std::vector<std::pair<int, std::uint8_t>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes[static_cast<std::size_t>(i)];
    if (node.left < 0) {
      depths[node.symbol] = d;
      continue;
    }
    stack.push_back({node.left, static_cast<std::uint8_t>(d + 1)});
    stack.push_back({node.right, static_cast<std::uint8_t>(d + 1)});
  }
  return depths;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    const std::vector<std::uint64_t>& freqs) {
  // bzip2's depth-limiting strategy: rebuild with flattened frequencies
  // until the deepest leaf fits kMaxCodeLen.
  std::vector<std::uint64_t> f = freqs;
  for (;;) {
    std::vector<std::uint8_t> depths = tree_depths(f);
    const std::uint8_t deepest =
        depths.empty() ? 0 : *std::max_element(depths.begin(), depths.end());
    if (deepest <= kMaxCodeLen) return depths;
    for (auto& x : f)
      if (x) x = x / 2 + 1;
  }
}

std::vector<std::uint32_t> canonical_codes(
    const std::vector<std::uint8_t>& lengths) {
  std::uint32_t count[kMaxCodeLen + 2] = {};
  for (auto l : lengths) ++count[l];
  count[0] = 0;
  std::uint32_t next[kMaxCodeLen + 2] = {};
  std::uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s]) codes[s] = next[lengths[s]]++;
  return codes;
}

bool HuffmanDecoder::init(const std::vector<std::uint8_t>& lengths) {
  std::fill(std::begin(count_), std::end(count_), 0u);
  for (auto l : lengths) {
    if (l > kMaxCodeLen) return false;
    ++count_[l];
  }
  count_[0] = 0;
  // Kraft check (allow the degenerate single-symbol code).
  std::uint64_t kraft = 0;
  for (unsigned l = 1; l <= kMaxCodeLen; ++l)
    kraft += static_cast<std::uint64_t>(count_[l]) << (kMaxCodeLen - l);
  if (kraft > (1ULL << kMaxCodeLen)) return false;

  std::uint32_t code = 0, index = 0;
  for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
    code = (code + count_[l - 1]) << 1;
    first_code_[l] = code;
    offset_[l] = index;
    index += count_[l];
  }
  sorted_symbols_.clear();
  sorted_symbols_.resize(index);
  std::uint32_t pos[kMaxCodeLen + 2];
  std::copy(std::begin(offset_), std::end(offset_), std::begin(pos));
  for (std::size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s])
      sorted_symbols_[pos[lengths[s]]++] = static_cast<std::uint16_t>(s);
  return !sorted_symbols_.empty();
}

int HuffmanDecoder::decode(BitReader& in) const {
  std::uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
    const int bit = in.get_bit();
    if (bit < 0) return -1;
    code = (code << 1) | static_cast<std::uint32_t>(bit);
    if (count_[l] && code - first_code_[l] < count_[l])
      return sorted_symbols_[offset_[l] + (code - first_code_[l])];
  }
  return -1;
}

}  // namespace tle::bzip
