// Canonical Huffman coding for the ZRLE symbol alphabet.
#pragma once

#include <cstdint>
#include <vector>

#include "bzip/bitio.hpp"

namespace tle::bzip {

inline constexpr unsigned kMaxCodeLen = 20;

/// Compute depth-limited code lengths for `freqs` (zero-frequency symbols
/// get length 0). At least one symbol must have nonzero frequency.
std::vector<std::uint8_t> huffman_code_lengths(
    const std::vector<std::uint64_t>& freqs);

/// Canonical code assignment from lengths (codes[i] valid iff lengths[i]>0).
std::vector<std::uint32_t> canonical_codes(
    const std::vector<std::uint8_t>& lengths);

/// Streaming canonical decoder.
class HuffmanDecoder {
 public:
  /// Build from code lengths. Returns false if the lengths are not a valid
  /// (complete or over-complete-free) prefix code.
  bool init(const std::vector<std::uint8_t>& lengths);

  /// Decode one symbol; -1 on error/underrun.
  int decode(BitReader& in) const;

 private:
  // first_code_[l]: canonical first code of length l;
  // offset_[l]: index into sorted_symbols_ of that first code.
  std::uint32_t first_code_[kMaxCodeLen + 2] = {};
  std::uint32_t count_[kMaxCodeLen + 2] = {};
  std::uint32_t offset_[kMaxCodeLen + 2] = {};
  std::vector<std::uint16_t> sorted_symbols_;
};

}  // namespace tle::bzip
