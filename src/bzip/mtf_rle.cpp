#include "bzip/mtf_rle.hpp"

#include <numeric>

namespace tle::bzip {

// --- RLE1 -------------------------------------------------------------------

std::vector<std::uint8_t> rle1_encode(const std::uint8_t* data, std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n + n / 32);
  std::size_t i = 0;
  while (i < n) {
    const std::uint8_t b = data[i];
    std::size_t run = 1;
    while (i + run < n && data[i + run] == b && run < 4 + 250) ++run;
    if (run < 4) {
      for (std::size_t k = 0; k < run; ++k) out.push_back(b);
    } else {
      // Four literal copies then the number of additional repeats.
      for (int k = 0; k < 4; ++k) out.push_back(b);
      out.push_back(static_cast<std::uint8_t>(run - 4));
    }
    i += run;
  }
  return out;
}

std::vector<std::uint8_t> rle1_decode(const std::uint8_t* data, std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n);
  std::size_t i = 0;
  while (i < n) {
    const std::uint8_t b = data[i];
    std::size_t run = 1;
    while (run < 4 && i + run < n && data[i + run] == b) ++run;
    for (std::size_t k = 0; k < run; ++k) out.push_back(b);
    i += run;
    if (run == 4) {
      // A count byte always follows a 4-run in the encoded form.
      if (i < n) {
        const std::uint8_t extra = data[i++];
        out.insert(out.end(), extra, b);
      }
    }
  }
  return out;
}

// --- MTF --------------------------------------------------------------------

namespace {
struct MtfTable {
  std::uint8_t order[256];
  MtfTable() { std::iota(order, order + 256, 0); }

  /// Find `b`, return its index, and move it to the front.
  std::uint8_t encode(std::uint8_t b) {
    std::uint8_t i = 0;
    while (order[i] != b) ++i;
    for (std::uint8_t k = i; k > 0; --k) order[k] = order[k - 1];
    order[0] = b;
    return i;
  }

  std::uint8_t decode(std::uint8_t idx) {
    const std::uint8_t b = order[idx];
    for (std::uint8_t k = idx; k > 0; --k) order[k] = order[k - 1];
    order[0] = b;
    return b;
  }
};
}  // namespace

std::vector<std::uint8_t> mtf_encode(const std::uint8_t* data, std::size_t n) {
  MtfTable table;
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = table.encode(data[i]);
  return out;
}

std::vector<std::uint8_t> mtf_decode(const std::uint8_t* data, std::size_t n) {
  MtfTable table;
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = table.decode(data[i]);
  return out;
}

// --- ZRLE --------------------------------------------------------------------

namespace {
void emit_zero_run(std::size_t run, std::vector<std::uint16_t>* out) {
  // Bijective base-2 with digits {1 -> RUNA, 2 -> RUNB}.
  while (run > 0) {
    if (run & 1) {
      out->push_back(kRunA);
      run = (run - 1) / 2;
    } else {
      out->push_back(kRunB);
      run = (run - 2) / 2;
    }
  }
}
}  // namespace

std::vector<std::uint16_t> zrle_encode(const std::uint8_t* mtf, std::size_t n) {
  std::vector<std::uint16_t> out;
  out.reserve(n / 2 + 16);
  std::size_t run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mtf[i] == 0) {
      ++run;
      continue;
    }
    emit_zero_run(run, &out);
    run = 0;
    out.push_back(static_cast<std::uint16_t>(mtf[i]) + 1);
  }
  emit_zero_run(run, &out);
  out.push_back(kEob);
  return out;
}

bool zrle_decode(const std::uint16_t* symbols, std::size_t n,
                 std::vector<std::uint8_t>* out) {
  std::size_t run = 0;
  std::size_t mult = 1;
  auto flush_run = [&] {
    out->insert(out->end(), run, std::uint8_t{0});
    run = 0;
    mult = 1;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t s = symbols[i];
    if (s == kRunA || s == kRunB) {
      run += (s == kRunA ? 1 : 2) * mult;
      mult *= 2;
      continue;
    }
    flush_run();
    if (s == kEob) return i + 1 == n;  // EOB must be the final symbol
    if (s > 256) return false;
    out->push_back(static_cast<std::uint8_t>(s - 1));
  }
  return false;  // missing EOB
}

}  // namespace tle::bzip
