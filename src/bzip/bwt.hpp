// Burrows–Wheeler transform over full cyclic rotations (as in bzip2).
#pragma once

#include <cstdint>
#include <vector>

namespace tle::bzip {

struct BwtResult {
  std::vector<std::uint8_t> last_column;
  std::uint32_t primary_index = 0;  ///< row of the original string
};

/// Forward transform. O(n log n): prefix doubling with counting sort.
BwtResult bwt_forward(const std::uint8_t* data, std::size_t n);

/// Inverse transform.
std::vector<std::uint8_t> bwt_inverse(const std::uint8_t* last_column,
                                      std::size_t n,
                                      std::uint32_t primary_index);

}  // namespace tle::bzip
