// Bit-granular I/O over byte buffers, MSB-first (as in bzip2's format).
#pragma once

#include <cstdint>
#include <vector>

namespace tle::bzip {

class BitWriter {
 public:
  /// Append the low `nbits` of `value`, MSB first. nbits in [0, 57].
  void put(std::uint64_t value, unsigned nbits) {
    acc_ = (acc_ << nbits) | (value & ((nbits >= 64 ? 0 : (1ULL << nbits)) - 1));
    fill_ += nbits;
    while (fill_ >= 8) {
      fill_ -= 8;
      out_.push_back(static_cast<std::uint8_t>(acc_ >> fill_));
    }
  }

  /// Pad with zero bits to a byte boundary and return the buffer.
  std::vector<std::uint8_t> finish() {
    if (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - fill_)));
      fill_ = 0;
    }
    acc_ = 0;
    return std::move(out_);
  }

  std::size_t bit_count() const noexcept { return out_.size() * 8 + fill_; }

 private:
  std::vector<std::uint8_t> out_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  /// Read `nbits` (MSB first). Returns false on underrun.
  bool get(unsigned nbits, std::uint64_t* out) {
    while (fill_ < nbits) {
      if (pos_ >= size_) return false;
      acc_ = (acc_ << 8) | data_[pos_++];
      fill_ += 8;
    }
    fill_ -= nbits;
    *out = (acc_ >> fill_) & ((nbits >= 64 ? 0 : (1ULL << nbits)) - 1);
    return true;
  }

  /// Read a single bit; -1 on underrun.
  int get_bit() {
    std::uint64_t v;
    return get(1, &v) ? static_cast<int>(v) : -1;
  }

  std::size_t bits_consumed() const noexcept { return pos_ * 8 - fill_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

}  // namespace tle::bzip
