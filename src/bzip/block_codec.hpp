// Single-block compress/decompress: the full bzip2-style pipeline
//   RLE1 -> BWT -> MTF -> ZRLE -> canonical Huffman
// with a CRC-32 of the original data for integrity checking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tle::bzip {

/// Compress one block (any size >= 0).
std::vector<std::uint8_t> compress_block(const std::uint8_t* data,
                                         std::size_t n);

inline std::vector<std::uint8_t> compress_block(
    const std::vector<std::uint8_t>& data) {
  return compress_block(data.data(), data.size());
}

struct DecodeResult {
  bool ok = false;
  std::string error;  ///< set when !ok
  std::vector<std::uint8_t> data;
};

/// Decompress one block produced by compress_block. Detects truncation,
/// malformed streams, and CRC mismatches.
DecodeResult decompress_block(const std::uint8_t* data, std::size_t n);

inline DecodeResult decompress_block(const std::vector<std::uint8_t>& data) {
  return decompress_block(data.data(), data.size());
}

}  // namespace tle::bzip
