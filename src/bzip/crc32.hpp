// CRC-32 (IEEE 802.3 polynomial), table-driven.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace tle::bzip {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
inline constexpr auto kCrcTable = make_crc_table();
}  // namespace detail

/// One-shot CRC of a buffer.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                           std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = detail::kCrcTable[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace tle::bzip
