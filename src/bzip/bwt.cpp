#include "bzip/bwt.hpp"

#include <numeric>

namespace tle::bzip {

namespace {

/// Counting sort of `idx` by key `keys[(i + shift) % n]`, stable.
/// keys values must lie in [0, bound).
void counting_pass(const std::vector<std::uint32_t>& keys, std::size_t shift,
                   std::uint32_t bound, std::vector<std::uint32_t>& idx,
                   std::vector<std::uint32_t>& tmp,
                   std::vector<std::uint32_t>& count) {
  const std::size_t n = idx.size();
  count.assign(bound + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++count[keys[(i + shift) % n]];
  std::uint32_t sum = 0;
  for (auto& c : count) {
    const std::uint32_t t = c;
    c = sum;
    sum += t;
  }
  tmp.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t rotation = idx[i];
    tmp[count[keys[(rotation + shift) % n]]++] = rotation;
  }
  idx.swap(tmp);
}

}  // namespace

BwtResult bwt_forward(const std::uint8_t* data, std::size_t n) {
  BwtResult out;
  if (n == 0) return out;
  if (n == 1) {
    out.last_column.assign(1, data[0]);
    out.primary_index = 0;
    return out;
  }

  // rank[i]: equivalence class of rotation i under the current prefix length.
  std::vector<std::uint32_t> rank(n), idx(n), tmp(n), count, next_rank(n);
  for (std::size_t i = 0; i < n; ++i) rank[i] = data[i];
  std::iota(idx.begin(), idx.end(), 0u);

  std::uint32_t classes = 256;
  for (std::size_t k = 1;; k <<= 1) {
    // Radix sort rotations by (rank[i], rank[i+k]) — least significant first.
    counting_pass(rank, k % n, classes, idx, tmp, count);
    counting_pass(rank, 0, classes, idx, tmp, count);

    // Re-rank.
    next_rank[idx[0]] = 0;
    std::uint32_t r = 0;
    for (std::size_t i = 1; i < n; ++i) {
      const std::uint32_t a = idx[i], b = idx[i - 1];
      if (rank[a] != rank[b] ||
          rank[(a + k) % n] != rank[(b + k) % n])
        ++r;
      next_rank[a] = r;
    }
    rank.swap(next_rank);
    classes = r + 1;
    if (classes == n || k >= n) break;
  }

  out.last_column.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t start = idx[j];
    out.last_column[j] = data[(start + n - 1) % n];
    if (start == 0) out.primary_index = static_cast<std::uint32_t>(j);
  }
  return out;
}

std::vector<std::uint8_t> bwt_inverse(const std::uint8_t* last_column,
                                      std::size_t n,
                                      std::uint32_t primary_index) {
  std::vector<std::uint8_t> out;
  if (n == 0) return out;
  // base[c]: first row of the sorted (first) column holding byte c.
  std::uint32_t counts[256] = {};
  for (std::size_t j = 0; j < n; ++j) ++counts[last_column[j]];
  std::uint32_t base[256];
  std::uint32_t sum = 0;
  for (int c = 0; c < 256; ++c) {
    base[c] = sum;
    sum += counts[c];
  }
  // tt[f] = row of the last column that maps to first-column position f.
  std::vector<std::uint32_t> tt(n);
  for (std::size_t j = 0; j < n; ++j) tt[base[last_column[j]]++] = static_cast<std::uint32_t>(j);

  out.resize(n);
  std::uint32_t p = tt[primary_index];
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = last_column[p];
    p = tt[p];
  }
  return out;
}

}  // namespace tle::bzip
