#include "bzip/block_codec.hpp"

#include <cstring>

#include "bzip/bitio.hpp"
#include "bzip/bwt.hpp"
#include "bzip/crc32.hpp"
#include "bzip/huffman.hpp"
#include "bzip/mtf_rle.hpp"

namespace tle::bzip {

namespace {

constexpr std::uint32_t kMagic = 0x545A4231;  // "TZB1"
constexpr unsigned kLenBits = 5;              // code length field (0..20)

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

bool get_u32(const std::uint8_t* data, std::size_t n, std::size_t* pos,
             std::uint32_t* v) {
  if (*pos + 4 > n) return false;
  *v = static_cast<std::uint32_t>(data[*pos]) |
       (static_cast<std::uint32_t>(data[*pos + 1]) << 8) |
       (static_cast<std::uint32_t>(data[*pos + 2]) << 16) |
       (static_cast<std::uint32_t>(data[*pos + 3]) << 24);
  *pos += 4;
  return true;
}

}  // namespace

std::vector<std::uint8_t> compress_block(const std::uint8_t* data,
                                         std::size_t n) {
  const std::uint32_t crc = crc32(data, n);

  const std::vector<std::uint8_t> rle1 = rle1_encode(data, n);
  const BwtResult bwt = bwt_forward(rle1.data(), rle1.size());
  const std::vector<std::uint8_t> mtf =
      mtf_encode(bwt.last_column.data(), bwt.last_column.size());
  const std::vector<std::uint16_t> symbols = zrle_encode(mtf.data(), mtf.size());

  std::vector<std::uint64_t> freqs(kSymbolAlphabet, 0);
  for (auto s : symbols) ++freqs[s];
  const std::vector<std::uint8_t> lengths = huffman_code_lengths(freqs);
  const std::vector<std::uint32_t> codes = canonical_codes(lengths);

  std::vector<std::uint8_t> out;
  out.reserve(64 + symbols.size() / 2);
  put_u32(&out, kMagic);
  put_u32(&out, static_cast<std::uint32_t>(n));
  put_u32(&out, crc);
  put_u32(&out, static_cast<std::uint32_t>(rle1.size()));
  put_u32(&out, bwt.primary_index);

  BitWriter bw;
  for (std::size_t s = 0; s < kSymbolAlphabet; ++s) bw.put(lengths[s], kLenBits);
  for (auto s : symbols) bw.put(codes[s], lengths[s]);
  const std::vector<std::uint8_t> payload = bw.finish();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

DecodeResult decompress_block(const std::uint8_t* data, std::size_t n) {
  DecodeResult r;
  std::size_t pos = 0;
  std::uint32_t magic = 0, orig_size = 0, crc = 0, rle1_size = 0, primary = 0;
  if (!get_u32(data, n, &pos, &magic) || magic != kMagic) {
    r.error = "bad magic";
    return r;
  }
  if (!get_u32(data, n, &pos, &orig_size) || !get_u32(data, n, &pos, &crc) ||
      !get_u32(data, n, &pos, &rle1_size) || !get_u32(data, n, &pos, &primary)) {
    r.error = "truncated header";
    return r;
  }

  BitReader br(data + pos, n - pos);
  std::vector<std::uint8_t> lengths(kSymbolAlphabet);
  for (auto& l : lengths) {
    std::uint64_t v;
    if (!br.get(kLenBits, &v) || v > kMaxCodeLen) {
      r.error = "bad code lengths";
      return r;
    }
    l = static_cast<std::uint8_t>(v);
  }
  HuffmanDecoder dec;
  if (!dec.init(lengths)) {
    r.error = "invalid prefix code";
    return r;
  }

  std::vector<std::uint16_t> symbols;
  symbols.reserve(rle1_size + 16);
  for (;;) {
    const int s = dec.decode(br);
    if (s < 0) {
      r.error = "truncated symbol stream";
      return r;
    }
    symbols.push_back(static_cast<std::uint16_t>(s));
    if (s == kEob) break;
    if (symbols.size() > 2 * static_cast<std::size_t>(rle1_size) + 64) {
      r.error = "symbol stream overruns declared size";
      return r;
    }
  }

  std::vector<std::uint8_t> mtf;
  mtf.reserve(rle1_size);
  if (!zrle_decode(symbols.data(), symbols.size(), &mtf)) {
    r.error = "malformed run-length stream";
    return r;
  }
  if (mtf.size() != rle1_size) {
    r.error = "size mismatch after ZRLE";
    return r;
  }
  if (rle1_size > 0 && primary >= rle1_size) {
    r.error = "bad BWT index";
    return r;
  }

  const std::vector<std::uint8_t> last = mtf_decode(mtf.data(), mtf.size());
  const std::vector<std::uint8_t> rle1 = bwt_inverse(last.data(), last.size(), primary);
  r.data = rle1_decode(rle1.data(), rle1.size());

  if (r.data.size() != orig_size) {
    r.error = "size mismatch after RLE1";
    r.data.clear();
    return r;
  }
  if (crc32(r.data.data(), r.data.size()) != crc) {
    r.error = "CRC mismatch";
    r.data.clear();
    return r;
  }
  r.ok = true;
  return r;
}

}  // namespace tle::bzip
