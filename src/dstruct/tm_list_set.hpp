// Transactional sorted linked-list set — the Figure-5 "list" microbenchmark
// (6-bit keys, high structural contention: every traversal reads the same
// prefix).
//
// TM_NoQuiesce placement (the paper's SelectNoQ configuration):
//   * insert and contains never privatize   -> request NoQuiesce;
//   * an unsuccessful remove privatizes nothing -> request NoQuiesce;
//   * a successful remove privatizes and frees the node -> no request (and
//     the runtime would deny it anyway: freeing transactions must quiesce).
#pragma once

#include <climits>

#include "tm/api.hpp"

namespace tle {

class TmListSet {
 public:
  TmListSet() {
    // Sentinel head simplifies edge cases; never removed.
    head_ = new Node(LONG_MIN);
  }

  ~TmListSet() {
    // Routed delete: teardown usually runs single-threaded (predicate false,
    // immediate free), but a straggling simulated-HTM reader keeps these
    // nodes alive through limbo instead of racing the destructor.
    Node* n = head_;
    while (n) {
      Node* next = n->next.unsafe_get();
      tm_private_delete(n);
      n = next;
    }
  }

  TmListSet(const TmListSet&) = delete;
  TmListSet& operator=(const TmListSet&) = delete;

  /// Insert `key`; returns false if already present.
  bool insert(long key) {
    bool added = false;
    atomic_do([&](TxContext& tx) {
      added = false;
      tx.no_quiesce();
      Node* prev = head_;
      Node* cur = tx.read(prev->next);
      while (cur && cur->key < key) {
        prev = cur;
        cur = tx.read(cur->next);
      }
      if (cur && cur->key == key) return;
      Node* fresh = tx.create<Node>(key);
      fresh->next.unsafe_set(cur);  // node is private until linked
      tx.write(prev->next, fresh);
      added = true;
    });
    return added;
  }

  /// Remove `key`; returns false if absent.
  bool remove(long key) {
    bool removed = false;
    atomic_do([&](TxContext& tx) {
      removed = false;
      Node* prev = head_;
      Node* cur = tx.read(prev->next);
      while (cur && cur->key < key) {
        prev = cur;
        cur = tx.read(cur->next);
      }
      if (!cur || cur->key != key) {
        tx.no_quiesce();  // nothing privatized
        return;
      }
      tx.write(prev->next, tx.read(cur->next));
      tx.destroy(cur);  // forces post-commit quiescence before reuse
      removed = true;
    });
    return removed;
  }

  /// Membership test.
  bool contains(long key) const {
    bool found = false;
    atomic_do([&](TxContext& tx) {
      tx.no_quiesce();
      Node* cur = tx.read(head_->next);
      while (cur && cur->key < key) cur = tx.read(cur->next);
      found = cur && cur->key == key;
    });
    return found;
  }

  /// Non-transactional size walk — only valid while no transactions run.
  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (Node* cur = head_->next.unsafe_get(); cur;
         cur = cur->next.unsafe_get())
      ++n;
    return n;
  }

  /// Non-transactional sortedness check (test hook).
  bool sorted_unsafe() const {
    long last = LONG_MIN;
    for (Node* cur = head_->next.unsafe_get(); cur;
         cur = cur->next.unsafe_get()) {
      if (cur->key <= last) return false;
      last = cur->key;
    }
    return true;
  }

 private:
  struct Node {
    long key;
    tm_var<Node*> next;

    explicit Node(long k) : key(k) {}
  };

  Node* head_;
};

}  // namespace tle
