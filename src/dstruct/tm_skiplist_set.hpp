// Transactional skip-list set — an extension series for the Figure-5
// microbenchmarks (skip lists are the other classic TM set structure, with
// list-like traversal conflicts but logarithmic depth).
//
// Tower heights derive from a hash of the key, so the structure shape is a
// pure function of the key set — deterministic across thread schedules and
// convenient for validation.
#pragma once

#include <climits>

#include "tm/api.hpp"
#include "util/rng.hpp"

namespace tle {

class TmSkipListSet {
 public:
  static constexpr int kMaxLevel = 12;

  TmSkipListSet() { head_ = new Node(LONG_MIN, kMaxLevel); }

  ~TmSkipListSet() {
    Node* n = head_;
    while (n) {
      Node* next = n->next[0].unsafe_get();
      // Routed delete: see TmListSet::~TmListSet().
      tm_private_delete(n);
      n = next;
    }
  }

  TmSkipListSet(const TmSkipListSet&) = delete;
  TmSkipListSet& operator=(const TmSkipListSet&) = delete;

  bool insert(long key) {
    bool added = false;
    atomic_do([&](TxContext& tx) {
      added = false;
      tx.no_quiesce();  // publication only
      Node* preds[kMaxLevel];
      Node* found = search(tx, key, preds);
      if (found) return;
      const int h = height_for(key);
      Node* fresh = tx.create<Node>(key, h);
      for (int lv = 0; lv < h; ++lv) {
        // Private until the level-0 link publishes; set pointers bottom-up.
        fresh->next[lv].unsafe_set(tx.read(preds[lv]->next[lv]));
      }
      for (int lv = 0; lv < h; ++lv) tx.write(preds[lv]->next[lv], fresh);
      added = true;
    });
    return added;
  }

  bool remove(long key) {
    bool removed = false;
    atomic_do([&](TxContext& tx) {
      removed = false;
      Node* preds[kMaxLevel];
      Node* victim = search(tx, key, preds);
      if (!victim) {
        tx.no_quiesce();  // nothing privatized
        return;
      }
      for (int lv = 0; lv < victim->height; ++lv) {
        if (tx.read(preds[lv]->next[lv]) == victim)
          tx.write(preds[lv]->next[lv], tx.read(victim->next[lv]));
      }
      tx.destroy(victim);  // forces quiescence before reuse
      removed = true;
    });
    return removed;
  }

  bool contains(long key) const {
    bool found = false;
    atomic_do([&](TxContext& tx) {
      tx.no_quiesce();
      Node* preds[kMaxLevel];
      found = const_cast<TmSkipListSet*>(this)->search(tx, key, preds) != nullptr;
    });
    return found;
  }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (Node* cur = head_->next[0].unsafe_get(); cur;
         cur = cur->next[0].unsafe_get())
      ++n;
    return n;
  }

  /// Test hook: level-0 sortedness plus every upper level being a
  /// subsequence of level 0 with correct heights.
  bool valid_unsafe() const {
    long last = LONG_MIN;
    for (Node* cur = head_->next[0].unsafe_get(); cur;
         cur = cur->next[0].unsafe_get()) {
      if (cur->key <= last) return false;
      last = cur->key;
      if (cur->height < 1 || cur->height > kMaxLevel) return false;
      if (cur->height != height_for(cur->key)) return false;
    }
    for (int lv = 1; lv < kMaxLevel; ++lv) {
      long prev = LONG_MIN;
      for (Node* cur = head_->next[lv].unsafe_get(); cur;
           cur = cur->next[lv].unsafe_get()) {
        if (cur->key <= prev || cur->height <= lv) return false;
        prev = cur->key;
      }
    }
    return true;
  }

 private:
  struct Node {
    long key;
    int height;
    tm_var<Node*> next[kMaxLevel];

    Node(long k, int h) : key(k), height(h) {}
  };

  /// Deterministic geometric height from the key's hash.
  static int height_for(long key) {
    std::uint64_t h =
        static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL + 0x1234567;
    h ^= h >> 29;
    int lvl = 1;
    while ((h & 1) && lvl < kMaxLevel) {
      ++lvl;
      h >>= 1;
    }
    return lvl;
  }

  /// Top-down search filling per-level predecessors; returns the node with
  /// `key` if present.
  Node* search(TxContext& tx, long key, Node* preds[kMaxLevel]) {
    Node* pred = head_;
    Node* found = nullptr;
    for (int lv = kMaxLevel - 1; lv >= 0; --lv) {
      Node* cur = tx.read(pred->next[lv]);
      while (cur && cur->key < key) {
        pred = cur;
        cur = tx.read(cur->next[lv]);
      }
      preds[lv] = pred;
      if (cur && cur->key == key) found = cur;
    }
    return found;
  }

  Node* head_;
};

}  // namespace tle
