// Transactional chained hash set — the Figure-5 "hash" microbenchmark
// (8-bit keys over 256 buckets: transactions mostly touch disjoint state,
// so conflicts are rare and quiescence overhead dominates).
#pragma once

#include <climits>
#include <memory>

#include "tm/api.hpp"

namespace tle {

class TmHashSet {
 public:
  explicit TmHashSet(std::size_t buckets = 256)
      : nbuckets_(buckets ? buckets : 1),
        heads_(new Node*[nbuckets_]) {
    for (std::size_t i = 0; i < nbuckets_; ++i)
      heads_[i] = new Node(LONG_MIN);
  }

  ~TmHashSet() {
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      Node* n = heads_[i];
      while (n) {
        Node* next = n->next.unsafe_get();
        // Routed delete: see TmListSet::~TmListSet().
        tm_private_delete(n);
        n = next;
      }
    }
  }

  TmHashSet(const TmHashSet&) = delete;
  TmHashSet& operator=(const TmHashSet&) = delete;

  bool insert(long key) {
    bool added = false;
    Node* head = bucket(key);
    atomic_do([&](TxContext& tx) {
      added = false;
      tx.no_quiesce();
      Node* prev = head;
      Node* cur = tx.read(prev->next);
      while (cur && cur->key < key) {
        prev = cur;
        cur = tx.read(cur->next);
      }
      if (cur && cur->key == key) return;
      Node* fresh = tx.create<Node>(key);
      fresh->next.unsafe_set(cur);
      tx.write(prev->next, fresh);
      added = true;
    });
    return added;
  }

  bool remove(long key) {
    bool removed = false;
    Node* head = bucket(key);
    atomic_do([&](TxContext& tx) {
      removed = false;
      Node* prev = head;
      Node* cur = tx.read(prev->next);
      while (cur && cur->key < key) {
        prev = cur;
        cur = tx.read(cur->next);
      }
      if (!cur || cur->key != key) {
        tx.no_quiesce();
        return;
      }
      tx.write(prev->next, tx.read(cur->next));
      tx.destroy(cur);
      removed = true;
    });
    return removed;
  }

  bool contains(long key) const {
    bool found = false;
    Node* head = bucket(key);
    atomic_do([&](TxContext& tx) {
      tx.no_quiesce();
      Node* cur = tx.read(head->next);
      while (cur && cur->key < key) cur = tx.read(cur->next);
      found = cur && cur->key == key;
    });
    return found;
  }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < nbuckets_; ++i)
      for (Node* cur = heads_[i]->next.unsafe_get(); cur;
           cur = cur->next.unsafe_get())
        ++n;
    return n;
  }

 private:
  struct Node {
    long key;
    tm_var<Node*> next;

    explicit Node(long k) : key(k) {}
  };

  Node* bucket(long key) const noexcept {
    const auto h = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
    return heads_[(h >> 32) % nbuckets_];
  }

  std::size_t nbuckets_;
  std::unique_ptr<Node*[]> heads_;
};

}  // namespace tle
