// Transactional red-black tree set — the Figure-5 "tree" microbenchmark
// (8-bit keys; conflicts concentrate near the root, and rebalancing makes
// transactions larger than hash/list operations).
//
// The algorithm is the classic CLRS red-black tree with a nil sentinel,
// with every shared field access routed through the transaction context.
// The sentinel's parent pointer is written during deletes (as in CLRS),
// which transactionally conflicts across concurrent removals — a real
// behaviour of coarse transactional trees that the benchmark should keep.
#pragma once

#include "tm/api.hpp"

namespace tle {

class TmRbTreeSet {
 public:
  TmRbTreeSet() {
    nil_ = new Node(0);
    nil_->parent.unsafe_set(nil_);
    nil_->left.unsafe_set(nil_);
    nil_->right.unsafe_set(nil_);
    root_.unsafe_set(nil_);
  }

  ~TmRbTreeSet() {
    free_subtree(root_.unsafe_get());
    tm_private_delete(nil_);  // routed delete: see TmListSet::~TmListSet()
  }

  TmRbTreeSet(const TmRbTreeSet&) = delete;
  TmRbTreeSet& operator=(const TmRbTreeSet&) = delete;

  bool insert(long key) {
    bool added = false;
    atomic_do([&](TxContext& tx) {
      added = false;
      tx.no_quiesce();
      Node* y = nil_;
      Node* x = tx.read(root_);
      while (x != nil_) {
        y = x;
        if (key == x->key) return;  // already present
        x = key < x->key ? tx.read(x->left) : tx.read(x->right);
      }
      Node* z = tx.create<Node>(key);
      z->red.unsafe_set(true);  // private until linked below
      z->parent.unsafe_set(y);
      z->left.unsafe_set(nil_);
      z->right.unsafe_set(nil_);
      if (y == nil_)
        tx.write(root_, z);
      else if (key < y->key)
        tx.write(y->left, z);
      else
        tx.write(y->right, z);
      insert_fixup(tx, z);
      added = true;
    });
    return added;
  }

  bool remove(long key) {
    bool removed = false;
    atomic_do([&](TxContext& tx) {
      removed = false;
      Node* z = tx.read(root_);
      while (z != nil_ && z->key != key)
        z = key < z->key ? tx.read(z->left) : tx.read(z->right);
      if (z == nil_) {
        tx.no_quiesce();  // nothing privatized
        return;
      }
      erase_node(tx, z);
      tx.destroy(z);  // commit will quiesce before freeing
      removed = true;
    });
    return removed;
  }

  bool contains(long key) const {
    bool found = false;
    atomic_do([&](TxContext& tx) {
      tx.no_quiesce();
      Node* x = tx.read(root_);
      while (x != nil_ && x->key != key)
        x = key < x->key ? tx.read(x->left) : tx.read(x->right);
      found = x != nil_;
    });
    return found;
  }

  std::size_t size_unsafe() const { return count_subtree(root_.unsafe_get()); }

  /// Structural validation (test hook; call only while quiescent).
  /// Checks BST order, red-red absence, and black-height balance.
  bool valid_unsafe() const {
    long lo = 0, hi = 0;
    return black_height(root_.unsafe_get(), &lo, &hi) >= 0 &&
           !root_.unsafe_get()->red.unsafe_get();
  }

 private:
  struct Node {
    long key;
    tm_var<bool> red;
    tm_var<Node*> parent;
    tm_var<Node*> left;
    tm_var<Node*> right;

    explicit Node(long k) : key(k) {}
  };

  // --- transactional helpers (CLRS) --------------------------------------

  void left_rotate(TxContext& tx, Node* x) {
    Node* y = tx.read(x->right);
    Node* yl = tx.read(y->left);
    tx.write(x->right, yl);
    if (yl != nil_) tx.write(yl->parent, x);
    Node* xp = tx.read(x->parent);
    tx.write(y->parent, xp);
    if (xp == nil_)
      tx.write(root_, y);
    else if (x == tx.read(xp->left))
      tx.write(xp->left, y);
    else
      tx.write(xp->right, y);
    tx.write(y->left, x);
    tx.write(x->parent, y);
  }

  void right_rotate(TxContext& tx, Node* x) {
    Node* y = tx.read(x->left);
    Node* yr = tx.read(y->right);
    tx.write(x->left, yr);
    if (yr != nil_) tx.write(yr->parent, x);
    Node* xp = tx.read(x->parent);
    tx.write(y->parent, xp);
    if (xp == nil_)
      tx.write(root_, y);
    else if (x == tx.read(xp->right))
      tx.write(xp->right, y);
    else
      tx.write(xp->left, y);
    tx.write(y->right, x);
    tx.write(x->parent, y);
  }

  void insert_fixup(TxContext& tx, Node* z) {
    while (true) {
      Node* zp = tx.read(z->parent);
      if (!tx.read(zp->red)) break;
      Node* zpp = tx.read(zp->parent);
      if (zp == tx.read(zpp->left)) {
        Node* y = tx.read(zpp->right);  // uncle
        if (tx.read(y->red)) {
          tx.write(zp->red, false);
          tx.write(y->red, false);
          tx.write(zpp->red, true);
          z = zpp;
        } else {
          if (z == tx.read(zp->right)) {
            z = zp;
            left_rotate(tx, z);
            zp = tx.read(z->parent);
            zpp = tx.read(zp->parent);
          }
          tx.write(zp->red, false);
          tx.write(zpp->red, true);
          right_rotate(tx, zpp);
        }
      } else {
        Node* y = tx.read(zpp->left);
        if (tx.read(y->red)) {
          tx.write(zp->red, false);
          tx.write(y->red, false);
          tx.write(zpp->red, true);
          z = zpp;
        } else {
          if (z == tx.read(zp->left)) {
            z = zp;
            right_rotate(tx, z);
            zp = tx.read(z->parent);
            zpp = tx.read(zp->parent);
          }
          tx.write(zp->red, false);
          tx.write(zpp->red, true);
          left_rotate(tx, zpp);
        }
      }
    }
    Node* root = tx.read(root_);
    if (tx.read(root->red)) tx.write(root->red, false);
  }

  void transplant(TxContext& tx, Node* u, Node* v) {
    Node* up = tx.read(u->parent);
    if (up == nil_)
      tx.write(root_, v);
    else if (u == tx.read(up->left))
      tx.write(up->left, v);
    else
      tx.write(up->right, v);
    tx.write(v->parent, up);  // may write nil_->parent, as in CLRS
  }

  Node* subtree_min(TxContext& tx, Node* x) {
    for (Node* l = tx.read(x->left); l != nil_; l = tx.read(x->left)) x = l;
    return x;
  }

  void erase_node(TxContext& tx, Node* z) {
    Node* y = z;
    bool y_was_red = tx.read(y->red);
    Node* x;
    if (tx.read(z->left) == nil_) {
      x = tx.read(z->right);
      transplant(tx, z, x);
    } else if (tx.read(z->right) == nil_) {
      x = tx.read(z->left);
      transplant(tx, z, x);
    } else {
      y = subtree_min(tx, tx.read(z->right));
      y_was_red = tx.read(y->red);
      x = tx.read(y->right);
      if (tx.read(y->parent) == z) {
        tx.write(x->parent, y);
      } else {
        transplant(tx, y, x);
        Node* zr = tx.read(z->right);
        tx.write(y->right, zr);
        tx.write(zr->parent, y);
      }
      transplant(tx, z, y);
      Node* zl = tx.read(z->left);
      tx.write(y->left, zl);
      tx.write(zl->parent, y);
      tx.write(y->red, tx.read(z->red));
    }
    if (!y_was_red) delete_fixup(tx, x);
  }

  void delete_fixup(TxContext& tx, Node* x) {
    while (x != tx.read(root_) && !tx.read(x->red)) {
      Node* xp = tx.read(x->parent);
      if (x == tx.read(xp->left)) {
        Node* w = tx.read(xp->right);
        if (tx.read(w->red)) {
          tx.write(w->red, false);
          tx.write(xp->red, true);
          left_rotate(tx, xp);
          w = tx.read(xp->right);
        }
        if (!tx.read(tx.read(w->left)->red) &&
            !tx.read(tx.read(w->right)->red)) {
          tx.write(w->red, true);
          x = xp;
        } else {
          if (!tx.read(tx.read(w->right)->red)) {
            tx.write(tx.read(w->left)->red, false);
            tx.write(w->red, true);
            right_rotate(tx, w);
            w = tx.read(xp->right);
          }
          tx.write(w->red, tx.read(xp->red));
          tx.write(xp->red, false);
          tx.write(tx.read(w->right)->red, false);
          left_rotate(tx, xp);
          x = tx.read(root_);
        }
      } else {
        Node* w = tx.read(xp->left);
        if (tx.read(w->red)) {
          tx.write(w->red, false);
          tx.write(xp->red, true);
          right_rotate(tx, xp);
          w = tx.read(xp->left);
        }
        if (!tx.read(tx.read(w->right)->red) &&
            !tx.read(tx.read(w->left)->red)) {
          tx.write(w->red, true);
          x = xp;
        } else {
          if (!tx.read(tx.read(w->left)->red)) {
            tx.write(tx.read(w->right)->red, false);
            tx.write(w->red, true);
            left_rotate(tx, w);
            w = tx.read(xp->left);
          }
          tx.write(w->red, tx.read(xp->red));
          tx.write(xp->red, false);
          tx.write(tx.read(w->left)->red, false);
          right_rotate(tx, xp);
          x = tx.read(root_);
        }
      }
    }
    if (tx.read(x->red)) tx.write(x->red, false);
  }

  // --- non-transactional helpers ------------------------------------------

  void free_subtree(Node* n) {
    if (n == nil_ || n == nullptr) return;
    free_subtree(n->left.unsafe_get());
    free_subtree(n->right.unsafe_get());
    tm_private_delete(n);  // routed delete: see TmListSet::~TmListSet()
  }

  std::size_t count_subtree(Node* n) const {
    if (n == nil_) return 0;
    return 1 + count_subtree(n->left.unsafe_get()) +
           count_subtree(n->right.unsafe_get());
  }

  /// Returns the black-height of `n`, or -1 if any invariant fails.
  /// `lo`/`hi` receive the subtree's key range for BST checking.
  long black_height(Node* n, long* lo, long* hi) const {
    if (n == nil_) {
      *lo = *hi = 0;
      return 1;
    }
    long llo = 0, lhi = 0, rlo = 0, rhi = 0;
    const long bl = black_height(n->left.unsafe_get(), &llo, &lhi);
    const long br = black_height(n->right.unsafe_get(), &rlo, &rhi);
    if (bl < 0 || br < 0 || bl != br) return -1;
    // BST ordering.
    if (n->left.unsafe_get() != nil_ && lhi >= n->key) return -1;
    if (n->right.unsafe_get() != nil_ && rlo <= n->key) return -1;
    const bool red = n->red.unsafe_get();
    if (red) {
      if (n->left.unsafe_get()->red.unsafe_get() ||
          n->right.unsafe_get()->red.unsafe_get())
        return -1;  // red-red violation
    }
    *lo = n->left.unsafe_get() != nil_ ? llo : n->key;
    *hi = n->right.unsafe_get() != nil_ ? rhi : n->key;
    return bl + (red ? 0 : 1);
  }

  Node* nil_;
  tm_var<Node*> root_;
};

}  // namespace tle
